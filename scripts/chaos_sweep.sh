#!/usr/bin/env bash
# Chaos gate: run the full figure suite over 4 forked workers while
# OOVA_FAULT injects a rotating schedule of failures — worker
# crashes, hangs, torn and garbage frames, fork failures, store
# corruption — with the full invariant audit (OOVA_CHECK=2) riding
# along. Every recovered run must be byte-identical to its checked-in
# golden and exit zero (no violations); the store passes must
# quarantine what was corrupted. Proves the fault-tolerance paths on
# the whole suite, not just the unit-test batches.
#
# usage: chaos_sweep.sh <oova_bench> <store-dir> <out-dir>
#
# Per-figure outputs, stderr logs and the quarantined .bad entries
# land in <out-dir> (kept as a CI artifact).
set -u

BENCH="${1:?usage: chaos_sweep.sh <oova_bench> <store-dir> <out-dir>}"
STORE="${2:?usage: chaos_sweep.sh <oova_bench> <store-dir> <out-dir>}"
OUT="${3:?usage: chaos_sweep.sh <oova_bench> <store-dir> <out-dir>}"

# Goldens are captured at 0.25; the audit must ride along everywhere.
export OOVA_SCALE=0.25
export OOVA_CHECK=2

GOLDEN_DIR="$(cd "$(dirname "$0")/.." && pwd)/tests/golden"

mkdir -p "$OUT" || exit 1

figures="$("$BENCH" --list | awk '{print $1}' |
    grep -v '^simspeed$')" || {
    echo "chaos_sweep: cannot list figures" >&2
    exit 1
}

# The rotating schedule: figure i gets schedule (i mod N). Every
# spec here is recoverable with the default --max-retries 2;
# worker-hang is assigned separately (below) because each hang costs
# one full --job-timeout-ms wait, which is too slow to rotate over
# every figure.
specs=(
    "worker-exit:2"
    "frame-truncate:1"
    "frame-garbage:2"
    "fork-fail:1"
    "worker-exit:1,frame-garbage:1"
)

fail=0
i=0
for fig in $figures; do
    spec="${specs[$((i % ${#specs[@]}))]}"
    i=$((i + 1))
    if ! OOVA_FAULT="$spec" "$BENCH" "$fig" --workers 4 \
            > "$OUT/$fig.txt" 2> "$OUT/$fig.err.txt"; then
        echo "FAIL: $fig under OOVA_FAULT=$spec exited non-zero" >&2
        fail=1
    fi
    if ! diff -u "$GOLDEN_DIR/$fig.txt" "$OUT/$fig.txt" \
            > "$OUT/$fig.diff.txt"; then
        echo "FAIL: $fig under OOVA_FAULT=$spec differs from its" \
            "golden (see $fig.diff.txt)" >&2
        fail=1
    fi
done

# The watchdog pass: one hang on one small figure, recovered via
# --job-timeout-ms. fig4 sweeps a handful of configs, so the single
# timeout wait dominates but stays cheap.
hang_fig=fig4
if ! OOVA_FAULT=worker-hang:1 "$BENCH" "$hang_fig" --workers 4 \
        --job-timeout-ms 2000 \
        > "$OUT/$hang_fig.hang.txt" 2> "$OUT/$hang_fig.hang.err.txt"
then
    echo "FAIL: $hang_fig hang run exited non-zero" >&2
    fail=1
fi
if ! diff -u "$GOLDEN_DIR/$hang_fig.txt" "$OUT/$hang_fig.hang.txt" \
        > "$OUT/$hang_fig.hang.diff.txt"; then
    echo "FAIL: $hang_fig hang run differs from its golden" >&2
    fail=1
fi
if ! grep -q "timed out" "$OUT/$hang_fig.hang.err.txt"; then
    echo "FAIL: $hang_fig hang run never tripped the watchdog" >&2
    fail=1
fi

# The store passes: populate with one corrupt entry and one torn
# index append injected, then re-run warm — the corrupt entry must
# be quarantined (counted, .bad preserved) and re-simulated, the
# torn index tolerated, and the bytes unchanged throughout.
store_fig=fig5
if ! OOVA_FAULT=store-corrupt:3,store-torn-index:2 "$BENCH" \
        "$store_fig" --store "$STORE" --store-stats \
        > "$OUT/$store_fig.cold.txt" \
        2> "$OUT/$store_fig.cold.err.txt"; then
    echo "FAIL: $store_fig cold store run exited non-zero" >&2
    fail=1
fi
if ! "$BENCH" "$store_fig" --store "$STORE" --workers 4 \
        --store-stats > "$OUT/$store_fig.warm.txt" \
        2> "$OUT/$store_fig.warm.err.txt"; then
    echo "FAIL: $store_fig warm store run exited non-zero" >&2
    fail=1
fi
for pass in cold warm; do
    if ! diff -u "$GOLDEN_DIR/$store_fig.txt" \
            "$OUT/$store_fig.$pass.txt" \
            > "$OUT/$store_fig.$pass.diff.txt"; then
        echo "FAIL: $store_fig $pass store run differs from its" \
            "golden" >&2
        fail=1
    fi
done
if ! grep -q 'quarantined=1' "$OUT/$store_fig.warm.err.txt"; then
    echo "FAIL: warm store run did not report quarantined=1" >&2
    fail=1
fi
bad="$(ls "$STORE"/*.bad 2>/dev/null | wc -l)"
if [ "$bad" -lt 1 ]; then
    echo "FAIL: no quarantined .bad entry left for post-mortem" >&2
    fail=1
else
    cp "$STORE"/*.bad "$OUT/" 2>/dev/null
fi

if [ "$fail" -eq 0 ]; then
    echo "chaos_sweep: OK ($(echo "$figures" | wc -w) figures under" \
        "rotating faults, 1 hang, 1 quarantine)"
fi
exit "$fail"
