#!/usr/bin/env bash
# Invariant-audit gate: run every registered figure with the full
# audit (OOVA_CHECK=2) and fail on any checker violation.
#
# The golden gate (check_goldens.sh) proves figure *output* is
# unchanged; this gate proves the machine's internal conservation
# laws (free-list/refcount conservation, wakeup subscriptions, event
# calendar soundness, queue age order, memory window sanity, TLB
# structure) hold on every one of those runs. A violation prints a
# structured "OOVA-CHECK VIOLATION cycle=... checker=... detail=..."
# line on stderr and turns the bench exit code non-zero.
#
# Usage:
#   scripts/invariant_audit.sh [path/to/oova_bench] [audit.log]
#
# The optional second argument captures all audit stderr into a log
# file (uploaded as a CI artifact). simspeed is exempt: it prints
# wall-clock timings and is not a correctness surface.

set -u -o pipefail

BENCH="${1:-build/oova_bench}"
LOG="${2:-}"

if [ ! -x "$BENCH" ]; then
    echo "invariant_audit: bench binary '$BENCH' not found" >&2
    exit 2
fi

export OOVA_SCALE="${OOVA_SCALE:-0.25}"
export OOVA_CHECK=2

figures="$("$BENCH" --list | awk '{print $1}' | grep -v '^simspeed$')" || {
    echo "invariant_audit: '$BENCH --list' failed" >&2
    exit 2
}
if [ -z "$figures" ]; then
    echo "invariant_audit: '$BENCH --list' produced no figures" >&2
    exit 2
fi

if [ -n "$LOG" ]; then
    : > "$LOG"
fi

fail=0
failed=""
for fig in $figures; do
    echo "auditing $fig (OOVA_CHECK=2, OOVA_SCALE=$OOVA_SCALE)"
    if [ -n "$LOG" ]; then
        "$BENCH" "$fig" > /dev/null 2>> "$LOG"
    else
        "$BENCH" "$fig" > /dev/null
    fi
    rc=$?
    if [ "$rc" -ne 0 ]; then
        echo "INVARIANT AUDIT FAILED: $fig (exit $rc)" >&2
        failed="$failed $fig"
        fail=1
    fi
done

if [ -n "$LOG" ] && [ -s "$LOG" ]; then
    echo "audit log ($LOG):" >&2
    cat "$LOG" >&2
fi

if [ "$fail" -ne 0 ]; then
    echo "invariant-audit gate FAILED:$failed" >&2
    exit 1
fi
echo "invariant-audit gate passed ($(echo "$figures" | wc -w) figures)"
