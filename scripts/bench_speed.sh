#!/usr/bin/env bash
# Simulator-throughput tracking: measure simulated instructions per
# second and record it in BENCH_simspeed.json at the repo root.
#
# Two sources feed the record:
#   - the google-benchmark binary build/simspeed (single-simulation
#     throughput per model; BM_OooSim/16 on hydro2d is the headline
#     number perf PRs are judged by), and
#   - `oova_bench simspeed --json` (sweep-engine batch throughput,
#     the path every figure runs on).
#
# Usage:
#   scripts/bench_speed.sh [--build-dir DIR] [--out FILE]
#                          [--min-time SECONDS] [--set-baseline]
#                          [--check]
#
# Default mode re-measures and rewrites the "current" section of the
# output file, preserving the recorded "baseline" (when --out points
# somewhere fresh, e.g. a CI artifact, the record is seeded from the
# checked-in repo-root file so the baseline rides along).
# --set-baseline records the measurement as the baseline instead
# (done once, before a perf change lands). --check additionally
# compares the fresh measurement against the checked-in "current"
# section at the repo root and prints a GitHub-style ::warning:: per
# metric that regressed by more than 20% — it never fails the build
# (timing on shared CI runners is noisy; the warning is a prompt to
# look, not a gate), and the measurement is still recorded to --out.
#
# Throughput is wall-clock dependent: only compare numbers measured
# on the same machine. The checked-in numbers document the dev
# container this repo is grown in.
set -euo pipefail

BUILD_DIR=build
OUT=""
MIN_TIME=0.5
MODE=current
CHECK=0

while [ $# -gt 0 ]; do
    case "$1" in
    --build-dir)
        BUILD_DIR="$2"
        shift 2
        ;;
    --out)
        OUT="$2"
        shift 2
        ;;
    --min-time)
        MIN_TIME="$2"
        shift 2
        ;;
    --set-baseline)
        MODE=baseline
        shift
        ;;
    --check)
        CHECK=1
        shift
        ;;
    *)
        echo "bench_speed: unknown argument '$1'" >&2
        exit 2
        ;;
    esac
done

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
[ -n "$OUT" ] || OUT="$ROOT/BENCH_simspeed.json"

BENCH="$BUILD_DIR/oova_bench"
MICRO="$BUILD_DIR/simspeed"
if [ ! -x "$BENCH" ]; then
    echo "bench_speed: '$BENCH' not found (build first)" >&2
    exit 2
fi

# Pin the trace scale: throughput numbers are only comparable at the
# scale they were measured at. 0.5 matches bench/simspeed.cc's cache.
export OOVA_SCALE=0.5

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

# Sweep-engine throughput: single-threaded so the number tracks
# simulator speed, not host core count.
"$BENCH" simspeed --threads 1 --json > "$TMP/sweep.json"

# Microbenchmarks (optional: the binary only exists when
# google-benchmark is installed).
if [ -x "$MICRO" ]; then
    "$MICRO" --benchmark_min_time="$MIN_TIME" \
        --benchmark_format=json > "$TMP/micro.json" 2> /dev/null
else
    echo "bench_speed: '$MICRO' not built; recording sweep only" >&2
fi

# --dirty: a number measured from an uncommitted tree must not be
# attributed to a commit that cannot reproduce it.
LABEL="$(git -C "$ROOT" describe --always --dirty 2> /dev/null || echo unknown)"

python3 - "$TMP" "$OUT" "$MODE" "$CHECK" "$LABEL" "$ROOT/BENCH_simspeed.json" << 'EOF'
import json
import os
import sys

tmp, out, mode, check, label, ref_path = sys.argv[1:7]

# ---- parse the sweep figure: Model -> instr/s (raw integer column)
with open(os.path.join(tmp, "sweep.json")) as f:
    sweep_fig = json.load(f)
if isinstance(sweep_fig, list):  # oova_bench wraps figures in a list
    sweep_fig = sweep_fig[0]
sec = sweep_fig["sections"][0]
headers = sec["headers"]
model_col = headers.index("Model")
if "instr/s" in headers:
    ips_col = headers.index("instr/s")
    scale_by = 1
else:  # pre-PR5 renderer: only the formatted Minstr/s column
    ips_col = headers.index("Minstr/s")
    scale_by = 1_000_000
sweep = {
    row[model_col]: int(float(row[ips_col]) * scale_by)
    for row in sec["rows"]
}

# ---- parse google-benchmark: name -> items_per_second
micro = {}
micro_path = os.path.join(tmp, "micro.json")
if os.path.exists(micro_path):
    with open(micro_path) as f:
        for b in json.load(f)["benchmarks"]:
            if "items_per_second" in b:
                micro[b["name"]] = int(b["items_per_second"])

measurement = {
    "label": label,
    "scale": 0.5,
    "microbench_instr_per_sec": micro,
    "sweep_instr_per_sec": sweep,
}

# Start from the record at --out; a fresh --out location inherits
# the checked-in record so its baseline (and anything else already
# tracked) is preserved alongside the new measurement.
record = {}
for path in (out, ref_path):
    if os.path.exists(path):
        with open(path) as f:
            record = json.load(f)
        break
record.setdefault("schema", 1)
record.setdefault(
    "note",
    "Simulated instructions/sec (OOVA_SCALE=0.5, --threads 1). "
    "Wall-clock dependent: compare only numbers from the same "
    "machine. Update with scripts/bench_speed.sh; see README "
    "'Performance'.",
)

if int(check):
    ref = {}
    if os.path.exists(ref_path):
        with open(ref_path) as f:
            ref = json.load(f).get("current", {})
    # The checked-in numbers come from a different machine than the
    # CI runner, so absolute throughput would warn (or stay silent)
    # based on host speed, not code. Normalize by the trace-generation
    # microbenchmark — a pure-CPU workload the simulator rework never
    # touches — so host-speed differences cancel to first order and
    # the 20% threshold tracks genuine simulator regressions.
    old_canary = ref.get("microbench_instr_per_sec", {}).get(
        "BM_TraceGeneration")
    new_canary = measurement["microbench_instr_per_sec"].get(
        "BM_TraceGeneration")
    host = (new_canary / old_canary
            if old_canary and new_canary else 1.0)
    if host != 1.0:
        print(f"host-speed normalization (BM_TraceGeneration): "
              f"{host:.2f}x")
    for kind in ("microbench_instr_per_sec", "sweep_instr_per_sec"):
        for name, old in ref.get(kind, {}).items():
            new = measurement[kind].get(name)
            if not new or not old or name == "BM_TraceGeneration":
                continue
            scaled = old * host
            if new < 0.8 * scaled:
                print(
                    f"::warning::simulator throughput regression: "
                    f"{name} {old} -> {new} instr/s "
                    f"({new / scaled:.2f}x host-normalized, "
                    f"checked-in reference {ref.get('label', '?')})"
                )
            else:
                print(f"{name}: {old} -> {new} instr/s "
                      f"({new / scaled:.2f}x host-normalized)")

record["baseline" if mode == "baseline" else "current"] = measurement
with open(out, "w") as f:
    json.dump(record, f, indent=2, sort_keys=True)
    f.write("\n")
print(f"bench_speed: wrote {mode} measurement ({label}) to {out}")
EOF
