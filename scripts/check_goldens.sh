#!/usr/bin/env bash
# Golden-figure regression gate.
#
# Diffs the text output of every registered figure against the
# checked-in goldens under tests/golden/, captured at
# OOVA_SCALE=0.25. Figure output is deterministic across thread
# counts and machines (pure simulators, submission-order result
# collection), so any diff is a real behavior change: either a bug,
# or an intentional model change that must re-capture its goldens
# with --update in the same commit.
#
# Usage:
#   scripts/check_goldens.sh [path/to/oova_bench]            # check
#   scripts/check_goldens.sh [path/to/oova_bench] --update   # re-capture
#
# simspeed is exempt: it prints wall-clock timings.

# pipefail: a bench binary that dies after printing a matching table
# must still fail the gate.
set -u -o pipefail

BENCH="${1:-build/oova_bench}"
MODE="${2:-check}"
GOLDEN_DIR="$(cd "$(dirname "$0")/.." && pwd)/tests/golden"

if [ ! -x "$BENCH" ]; then
    echo "check_goldens: bench binary '$BENCH' not found" >&2
    exit 2
fi

# Pin the scale: goldens are only comparable at the scale they were
# captured at.
export OOVA_SCALE=0.25

# pipefail is inherited by the substitution's subshell, so a --list
# that dies mid-pipe fails here instead of yielding a silently
# truncated figure set (which would misreport stale/missing goldens).
figures="$("$BENCH" --list | awk '{print $1}' | grep -v '^simspeed$')" || {
    echo "check_goldens: '$BENCH --list' failed" >&2
    exit 2
}

# An empty figure list means --list itself failed; a gate that
# "passes" over nothing is worse than one that fails.
if [ -z "$figures" ]; then
    echo "check_goldens: '$BENCH --list' produced no figures" >&2
    exit 2
fi

if [ "$MODE" = "--update" ]; then
    mkdir -p "$GOLDEN_DIR"
    for fig in $figures; do
        echo "capturing $fig"
        "$BENCH" "$fig" > "$GOLDEN_DIR/$fig.txt" || exit 1
    done
    echo "goldens updated in $GOLDEN_DIR"
    exit 0
fi

fail=0
missing=""
for fig in $figures; do
    golden="$GOLDEN_DIR/$fig.txt"
    if [ ! -f "$golden" ]; then
        missing="$missing $fig"
        fail=1
        continue
    fi
    if ! "$BENCH" "$fig" | diff -u "$golden" - > /tmp/golden_diff_$$; then
        echo "GOLDEN MISMATCH: $fig" >&2
        cat /tmp/golden_diff_$$ >&2
        fail=1
    fi
done
rm -f /tmp/golden_diff_$$

# Every registered non-timing figure must be golden-gated: a new
# figure registered without a capture would otherwise dodge the gate
# until someone noticed. Name the offenders explicitly.
if [ -n "$missing" ]; then
    echo "MISSING GOLDENS:$missing" >&2
    echo "every registered figure needs tests/golden/<fig>.txt;" \
         "capture with: $0 $BENCH --update" >&2
fi

# Goldens for figures that no longer exist are also an error: they
# mean the gate is diffing nothing. Aggregate and name them all,
# symmetric with MISSING GOLDENS above. (Membership is tested with a
# plain loop: `echo | grep -q` trips pipefail when grep exits on an
# early match and echo takes SIGPIPE.)
orphans=""
for golden in "$GOLDEN_DIR"/*.txt; do
    fig="$(basename "$golden" .txt)"
    registered=0
    for f in $figures; do
        if [ "$f" = "$fig" ]; then
            registered=1
            break
        fi
    done
    if [ "$registered" -eq 0 ]; then
        orphans="$orphans $fig"
        fail=1
    fi
done
if [ -n "$orphans" ]; then
    echo "ORPHAN GOLDENS:$orphans" >&2
    echo "these goldens match no registered figure; delete them," \
         "or re-register the figure they belong to" >&2
fi

if [ "$fail" -ne 0 ]; then
    echo "golden-figure gate FAILED" >&2
    exit 1
fi
echo "golden-figure gate passed ($(echo "$figures" | wc -w) figures)"
