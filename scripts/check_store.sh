#!/usr/bin/env bash
# Sweep-farm gate: run every figure twice against one result store —
# cold (populating it), then warm over forked workers — and require
# (a) byte-identical stdout per figure and (b) a >90% aggregate hit
# rate on the warm pass. Proves the store key covers everything that
# matters and that store + sharding never perturb figure output.
#
# usage: check_store.sh <oova_bench> <store-dir> <out-dir>
#
# Writes per-figure outputs and [store] stat lines into <out-dir>
# (kept as a CI artifact). simspeed is exempt from the byte-diff for
# the same reason it carries no golden: it prints wall-clock
# timings. Its results still flow through the store, so it counts
# toward the hit rate.
set -u

BENCH="${1:?usage: check_store.sh <oova_bench> <store-dir> <out-dir>}"
STORE="${2:?usage: check_store.sh <oova_bench> <store-dir> <out-dir>}"
OUT="${3:?usage: check_store.sh <oova_bench> <store-dir> <out-dir>}"

: "${OOVA_SCALE:=0.25}"
export OOVA_SCALE

mkdir -p "$OUT" || exit 1

figures="$("$BENCH" --list | awk '{print $1}')" || {
    echo "check_store: cannot list figures" >&2
    exit 1
}

fail=0
for fig in $figures; do
    if ! "$BENCH" "$fig" --store "$STORE" --store-stats \
            > "$OUT/$fig.cold.txt" 2> "$OUT/$fig.cold.stats.txt"; then
        echo "FAIL: $fig cold run exited non-zero" >&2
        fail=1
    fi
done
for fig in $figures; do
    if ! "$BENCH" "$fig" --store "$STORE" --workers 4 --store-stats \
            > "$OUT/$fig.warm.txt" 2> "$OUT/$fig.warm.stats.txt"; then
        echo "FAIL: $fig warm run exited non-zero" >&2
        fail=1
    fi
    if [ "$fig" != simspeed ] &&
            ! diff -u "$OUT/$fig.cold.txt" "$OUT/$fig.warm.txt" \
                > "$OUT/$fig.diff.txt"; then
        echo "FAIL: $fig warm-store output differs from cold run" \
            "(see $fig.diff.txt)" >&2
        fail=1
    fi
done

# Aggregate the warm pass's [store] lines: with every figure already
# computed by the cold pass, nearly everything must hit. The slack
# below 100% is exactly the uncacheable jobs (pipe-traced runs and
# other observe-side-effect sweeps), which never consult the store.
hits=0
misses=0
for fig in $figures; do
    line="$(grep '^\[store\]' "$OUT/$fig.warm.stats.txt" | tail -1)"
    h="$(printf '%s\n' "$line" | sed -n 's/.*hits=\([0-9]*\).*/\1/p')"
    m="$(printf '%s\n' "$line" |
        sed -n 's/.*misses=\([0-9]*\).*/\1/p')"
    hits=$((hits + ${h:-0}))
    misses=$((misses + ${m:-0}))
done

total=$((hits + misses))
echo "check_store: warm pass: $hits hits, $misses misses" \
    "($total lookups)"
if [ "$total" -eq 0 ]; then
    echo "FAIL: warm pass recorded no store lookups at all" >&2
    fail=1
elif [ $((hits * 100)) -lt $((total * 90)) ]; then
    echo "FAIL: warm-pass hit rate below 90%" >&2
    fail=1
fi

# Corruption pass: truncate one stored entry mid-file (the on-disk
# shape a lost write leaves behind) and re-run every figure warm.
# Whichever figure owns the victim must quarantine it to <key>.bad
# and re-simulate — same bytes out, no crash, no stale hit — and the
# next store() heals the key, so the hit-rate gate stays satisfied:
# one corrupt entry costs exactly one miss.
victim="$(ls "$STORE"/*.json 2>/dev/null | head -1)"
if [ -z "$victim" ]; then
    echo "FAIL: corruption pass found no store entries to corrupt" >&2
    fail=1
else
    size="$(wc -c < "$victim")"
    truncate -s $((size / 2)) "$victim" || {
        echo "FAIL: cannot truncate $victim" >&2
        fail=1
    }
    for fig in $figures; do
        if ! "$BENCH" "$fig" --store "$STORE" --workers 4 \
                --store-stats > "$OUT/$fig.corrupt.txt" \
                2> "$OUT/$fig.corrupt.stats.txt"; then
            echo "FAIL: $fig corrupt-store run exited non-zero" >&2
            fail=1
        fi
        if [ "$fig" != simspeed ] &&
                ! diff -u "$OUT/$fig.cold.txt" \
                    "$OUT/$fig.corrupt.txt" \
                    > "$OUT/$fig.corrupt.diff.txt"; then
            echo "FAIL: $fig corrupt-store output differs from cold" \
                "run (see $fig.corrupt.diff.txt)" >&2
            fail=1
        fi
    done
    bad="$(ls "$STORE"/*.bad 2>/dev/null | wc -l)"
    if [ "$bad" -lt 1 ]; then
        echo "FAIL: corrupt entry was not quarantined to <key>.bad" >&2
        fail=1
    fi
    quarantined=0
    for fig in $figures; do
        line="$(grep '^\[store\]' "$OUT/$fig.corrupt.stats.txt" |
            tail -1)"
        q="$(printf '%s\n' "$line" |
            sed -n 's/.*quarantined=\([0-9]*\).*/\1/p')"
        quarantined=$((quarantined + ${q:-0}))
    done
    echo "check_store: corruption pass: $bad .bad file(s)," \
        "$quarantined quarantine(s) reported"
    if [ "$quarantined" -lt 1 ]; then
        echo "FAIL: no run reported quarantined=N in its [store]" \
            "line" >&2
        fail=1
    fi
fi

[ "$fail" -eq 0 ] && echo "check_store: OK"
exit "$fail"
