#!/usr/bin/env python3
"""Project-specific lint gate.

Five repo invariants that neither the compiler nor clang-tidy can
see, each of which has bitten (or nearly bitten) a past PR:

  1. Every registered figure has a checked-in golden
     (tests/golden/<name>.txt), so no figure dodges the output gate.
  2. Every golden belongs to a registered figure — orphans mean the
     gate is diffing against nothing.
  3. Every SimResult field is surfaced by simResultJson() in
     src/mem/simresult.cc, so new counters cannot silently stay out
     of the machine-readable output the perf trajectory is tracked
     with.
  4. No naked new/delete outside the dedicated storage code: the
     simulator's hot-path storage is slab/sliding-queue based, and
     ad-hoc ownership has no place next to it.
  5. Every CpiBucket enum entry has a cpiBucketName() label (which
     simResultJson() surfaces) and a row in the README's CPI-bucket
     table, and vice versa — a bucket nobody can read about or parse
     out of the JSON is dead observability.

Exit code: 0 clean, 1 violations (each printed as "LINT: ...").
"""

import pathlib
import re
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent

# simspeed prints wall-clock timings: registered, but not a
# correctness surface, so it carries no golden.
GOLDEN_EXEMPT = {"simspeed"}

# Files allowed to own raw storage (none currently need to; add the
# slab/queue implementation here if it ever manages raw memory).
NAKED_NEW_ALLOWED: set = set()

errors = []


def err(msg: str) -> None:
    errors.append(msg)
    print(f"LINT: {msg}")


# ---------------------------------------------------------------
# Rules 1 + 2: figure registry <-> goldens, both directions.
# ---------------------------------------------------------------

def registered_figures() -> dict:
    """Figure name -> bench binary name, from the registry table."""
    src = (ROOT / "src/harness/figures.cc").read_text()
    # Parse only the figureRegistry() body: other tables in the file
    # also hold brace-initialized string pairs.
    m = re.search(r"figureRegistry\(\)\s*\{(.*)", src, re.S)
    if not m:
        err("figureRegistry() not found in src/harness/figures.cc")
        return {}
    figs = {}
    for fm in re.finditer(r'\{"([a-z0-9]+)",\s*"([a-z0-9_]+)"',
                          m.group(1)):
        figs[fm.group(1)] = fm.group(2)
    return figs


figures = registered_figures()
if len(figures) < 10:
    err(f"figure registry parse found only {len(figures)} entries "
        "in src/harness/figures.cc; the parser is broken")

golden_dir = ROOT / "tests/golden"
goldens = {p.stem for p in golden_dir.glob("*.txt")}

for name in sorted(figures):
    if name in GOLDEN_EXEMPT:
        continue
    if name not in goldens:
        err(f"figure '{name}' has no golden "
            f"(tests/golden/{name}.txt); capture it with "
            "scripts/check_goldens.sh --update")

for name in sorted(goldens):
    if name not in figures:
        err(f"orphan golden tests/golden/{name}.txt matches no "
            "registered figure")

# Each figure's standalone bench wrapper must exist (the registry's
# binary column is what `oova_bench --list` advertises).
for name, binary in sorted(figures.items()):
    if not ((ROOT / f"bench/{binary}.cc").exists() or
            (ROOT / f"bench/{name}.cc").exists()):
        err(f"figure '{name}' names bench binary '{binary}' but "
            f"bench/{binary}.cc does not exist")

# ---------------------------------------------------------------
# Rule 3: every SimResult field surfaced by simResultJson().
# ---------------------------------------------------------------

def simresult_fields() -> list:
    """Member and derived-accessor names of struct SimResult."""
    src = (ROOT / "src/mem/simresult.hh").read_text()
    m = re.search(r"struct SimResult\s*\{(.*)\n\};", src, re.S)
    if not m:
        err("cannot find struct SimResult in src/mem/simresult.hh")
        return []
    body = m.group(1)
    body = re.sub(r"/\*.*?\*/", "", body, flags=re.S)
    body = re.sub(r"//[^\n]*", "", body)
    names = []
    # Data members: "type name = init;" or "type name;" (incl. the
    # braced-init arrays), one per line.
    for dm in re.finditer(
            r"^\s+[A-Za-z_][\w:<>, ]*?\s+(\w+)\s*(?:=[^;]*|\{\})?;",
            body, re.M):
        names.append(dm.group(1))
    # Derived accessors: "type name() const".
    for fm in re.finditer(r"(\w+)\(\)\s*const", body):
        names.append(fm.group(1))
    return names


fields = simresult_fields()
if len(fields) < 20:
    err(f"SimResult parse found only {len(fields)} fields; the "
        "parser is broken")

renderer = (ROOT / "src/mem/simresult.cc").read_text()
m = re.search(r"simResultJson\(.*", renderer, re.S)
renderer_body = m.group(0) if m else ""
if not renderer_body:
    err("simResultJson() not found in src/mem/simresult.cc")
for field in fields:
    # The key appears either as a plain argument ("cycles") or as an
    # escaped JSON key inside a larger literal (\"program\").
    if (f'"{field}"' not in renderer_body and
            f'\\"{field}\\"' not in renderer_body):
        err(f"SimResult field '{field}' is not surfaced by "
            "simResultJson() in src/mem/simresult.cc")

# ---------------------------------------------------------------
# Rule 4: no naked new/delete outside dedicated storage code.
# ---------------------------------------------------------------

NEW_RE = re.compile(r"\bnew\b\s+[A-Za-z_(]")
DELETE_RE = re.compile(r"\bdelete(\[\])?\b\s+[A-Za-z_]")

for sub in ("src", "bench", "examples"):
    for path in sorted((ROOT / sub).rglob("*")):
        if path.suffix not in (".cc", ".hh", ".cpp", ".hpp"):
            continue
        rel = path.relative_to(ROOT).as_posix()
        if rel in NAKED_NEW_ALLOWED:
            continue
        text = path.read_text()
        text = re.sub(r"/\*.*?\*/", "", text, flags=re.S)
        for lineno, line in enumerate(text.splitlines(), 1):
            code = line.split("//", 1)[0].replace("= delete", "")
            if NEW_RE.search(code) or DELETE_RE.search(code):
                err(f"{rel}:{lineno}: naked new/delete — use the "
                    "slab, a container, or a smart pointer")

# ---------------------------------------------------------------
# Rule 5: CpiBucket enum <-> cpiBucketName() labels <-> README
# bucket table, all three in sync, both directions.
# ---------------------------------------------------------------

def cpi_enum_entries() -> list:
    """CpiBucket enumerators (minus the NumBuckets sentinel)."""
    src = (ROOT / "src/mem/simresult.hh").read_text()
    m = re.search(r"enum class CpiBucket[^{]*\{(.*?)\}", src, re.S)
    if not m:
        err("enum class CpiBucket not found in src/mem/simresult.hh")
        return []
    body = re.sub(r"//[^\n]*", "", m.group(1))
    entries = re.findall(r"\b([A-Z]\w*)\b", body)
    return [e for e in entries if e != "NumBuckets"]


def cpi_name_labels() -> dict:
    """Enumerator -> label string, from cpiBucketName()'s switch."""
    src = (ROOT / "src/mem/simresult.cc").read_text()
    m = re.search(r"cpiBucketName\(.*?\n\}", src, re.S)
    if not m:
        err("cpiBucketName() not found in src/mem/simresult.cc")
        return {}
    return dict(re.findall(
        r'case CpiBucket::(\w+):\s*return "([a-z-]+)"', m.group(0)))


def readme_bucket_labels() -> list:
    """Bucket labels from the README's CPI-bucket table."""
    text = (ROOT / "README.md").read_text()
    m = re.search(r"### CPI buckets\n(.*?)(?:\n#|\Z)", text, re.S)
    if not m:
        err("README.md has no '### CPI buckets' section")
        return []
    return re.findall(r"^\| `([a-z-]+)` \|", m.group(1), re.M)


cpi_entries = cpi_enum_entries()
cpi_labels = cpi_name_labels()
readme_labels = readme_bucket_labels()

for entry in cpi_entries:
    if entry not in cpi_labels:
        err(f"CpiBucket::{entry} has no label in cpiBucketName() "
            "(src/mem/simresult.cc)")
for entry in cpi_labels:
    if entry not in cpi_entries:
        err(f"cpiBucketName() labels unknown bucket "
            f"CpiBucket::{entry}")
for entry, label in sorted(cpi_labels.items()):
    if label not in readme_labels:
        err(f"CPI bucket '{label}' (CpiBucket::{entry}) missing "
            "from the README's '### CPI buckets' table")
for label in readme_labels:
    if label not in cpi_labels.values():
        err(f"README CPI-bucket table row '{label}' matches no "
            "cpiBucketName() label")

if errors:
    print(f"lint_oova: {len(errors)} violation(s)")
    sys.exit(1)
print("lint_oova: all checks passed "
      f"({len(figures)} figures, {len(fields)} SimResult fields, "
      f"{len(cpi_entries)} CPI buckets)")
