#!/usr/bin/env python3
"""Project-specific lint gate.

Nine repo invariants that neither the compiler nor clang-tidy can
see, each of which has bitten (or nearly bitten) a past PR:

  1. Every registered figure has a checked-in golden
     (tests/golden/<name>.txt), so no figure dodges the output gate.
  2. Every golden belongs to a registered figure — orphans mean the
     gate is diffing against nothing.
  3. Every SimResult field is surfaced by SimResult::toJson() in
     src/mem/simresult.cc, so new counters cannot silently stay out
     of the machine-readable output the perf trajectory is tracked
     with.
  4. Every stored SimResult field also round-trips through
     SimResult::fromJson() — the content-addressed result store
     persists results as toJson() text, so a counter that toJson()
     writes but fromJson() drops would silently zero itself on every
     store hit.
  5. No naked new/delete outside the dedicated storage code: the
     simulator's hot-path storage is slab/sliding-queue based, and
     ad-hoc ownership has no place next to it.
  6. Every CpiBucket enum entry has a cpiBucketName() label (which
     toJson() surfaces) and a row in the README's CPI-bucket table,
     and vice versa — a bucket nobody can read about or parse out of
     the JSON is dead observability.
  7. Every data member of the machine-config structs (OooConfig,
     RefConfig, MemConfig, TlbConfig, LatencyTable) is serialized in
     the config-key region of src/harness/sweep.cc (or explicitly
     allowlisted as observe-only) — a knob missing from
     sweepConfigKey() would alias store entries of runs that set it.
  8. Every OccStruct enum entry has an occStructName() label and a
     row in the README's occupancy-structure table, and vice versa;
     and both telemetry renderers (simResultJson in simresult.cc,
     the --stats dump in statsdump.cc) iterate via occStructName(),
     so every registered occupancy distribution reaches both output
     surfaces — a structure nobody can read about, parse out of the
     JSON, or grep out of the stats dump is dead telemetry.
  9. Every fault-injection Site enum entry has a siteName() label
     and a row in the README's fault-injection-site table, and vice
     versa — OOVA_FAULT specs are parsed by resolving names through
     siteName(), so a site missing a label is unreachable from any
     spec, and a site missing from the README is one nobody knows
     how to inject.

Exit code: 0 clean, 1 violations (each printed as "LINT: ...").
"""

import pathlib
import re
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent

# simspeed prints wall-clock timings: registered, but not a
# correctness surface, so it carries no golden.
GOLDEN_EXEMPT = {"simspeed"}

# Files allowed to own raw storage (none currently need to; add the
# slab/queue implementation here if it ever manages raw memory).
NAKED_NEW_ALLOWED: set = set()

errors = []


def err(msg: str) -> None:
    errors.append(msg)
    print(f"LINT: {msg}")


# ---------------------------------------------------------------
# Rules 1 + 2: figure registry <-> goldens, both directions.
# ---------------------------------------------------------------

def registered_figures() -> dict:
    """Figure name -> bench binary name, from the registry table."""
    src = (ROOT / "src/harness/figures.cc").read_text()
    # Parse only the figureRegistry() body: other tables in the file
    # also hold brace-initialized string pairs.
    m = re.search(r"figureRegistry\(\)\s*\{(.*)", src, re.S)
    if not m:
        err("figureRegistry() not found in src/harness/figures.cc")
        return {}
    figs = {}
    for fm in re.finditer(r'\{"([a-z0-9]+)",\s*"([a-z0-9_]+)"',
                          m.group(1)):
        figs[fm.group(1)] = fm.group(2)
    return figs


figures = registered_figures()
if len(figures) < 10:
    err(f"figure registry parse found only {len(figures)} entries "
        "in src/harness/figures.cc; the parser is broken")

golden_dir = ROOT / "tests/golden"
goldens = {p.stem for p in golden_dir.glob("*.txt")}

for name in sorted(figures):
    if name in GOLDEN_EXEMPT:
        continue
    if name not in goldens:
        err(f"figure '{name}' has no golden "
            f"(tests/golden/{name}.txt); capture it with "
            "scripts/check_goldens.sh --update")

for name in sorted(goldens):
    if name not in figures:
        err(f"orphan golden tests/golden/{name}.txt matches no "
            "registered figure")

# Each figure's standalone bench wrapper must exist (the registry's
# binary column is what `oova_bench --list` advertises).
for name, binary in sorted(figures.items()):
    if not ((ROOT / f"bench/{binary}.cc").exists() or
            (ROOT / f"bench/{name}.cc").exists()):
        err(f"figure '{name}' names bench binary '{binary}' but "
            f"bench/{binary}.cc does not exist")

# ---------------------------------------------------------------
# Rules 3 + 4: every SimResult field surfaced by toJson(), every
# stored field round-tripped by fromJson().
# ---------------------------------------------------------------

# Member functions of SimResult that the accessor regex sees but
# that are serialization machinery, not derived metrics.
SIMRESULT_NON_FIELDS = {"toJson"}


def simresult_fields() -> tuple:
    """(data members, derived accessors) of struct SimResult."""
    src = (ROOT / "src/mem/simresult.hh").read_text()
    m = re.search(r"struct SimResult\s*\{(.*)\n\};", src, re.S)
    if not m:
        err("cannot find struct SimResult in src/mem/simresult.hh")
        return [], []
    body = m.group(1)
    body = re.sub(r"/\*.*?\*/", "", body, flags=re.S)
    body = re.sub(r"//[^\n]*", "", body)
    # Class-level constants (kResultSchemaVersion) are not result
    # fields.
    body = re.sub(r"^\s*static [^;]*;", "", body, flags=re.M)
    stored = []
    # Data members: "type name = init;" or "type name;" (incl. the
    # braced-init arrays), one per line.
    for dm in re.finditer(
            r"^\s+[A-Za-z_][\w:<>, ]*?\s+(\w+)\s*(?:=[^;]*|\{\})?;",
            body, re.M):
        stored.append(dm.group(1))
    # Derived accessors: "type name() const".
    derived = [fm.group(1)
               for fm in re.finditer(r"(\w+)\(\)\s*const", body)
               if fm.group(1) not in SIMRESULT_NON_FIELDS]
    return stored, derived


stored_fields, derived_fields = simresult_fields()
fields = stored_fields + derived_fields
if len(fields) < 20:
    err(f"SimResult parse found only {len(fields)} fields; the "
        "parser is broken")

renderer = (ROOT / "src/mem/simresult.cc").read_text()
to_json_at = renderer.find("SimResult::toJson")
from_json_at = renderer.find("SimResult::fromJson")
if to_json_at < 0 or from_json_at < 0 or from_json_at < to_json_at:
    err("expected SimResult::toJson() followed by "
        "SimResult::fromJson() in src/mem/simresult.cc")
    to_json_at = from_json_at = 0
to_json_body = renderer[to_json_at:from_json_at]
from_json_body = renderer[from_json_at:]


def surfaces(body: str, field: str) -> bool:
    # The key appears either as a plain argument ("cycles") or as an
    # escaped JSON key inside a larger literal (\"program\").
    return (f'"{field}"' in body or f'\\"{field}\\"' in body)


for field in fields:
    if not surfaces(to_json_body, field):
        err(f"SimResult field '{field}' is not surfaced by "
            "SimResult::toJson() in src/mem/simresult.cc")
for field in stored_fields:
    if not surfaces(from_json_body, field):
        err(f"stored SimResult field '{field}' is not parsed back by "
            "SimResult::fromJson() in src/mem/simresult.cc — a "
            "result-store hit would silently drop it")

# ---------------------------------------------------------------
# Rule 5: no naked new/delete outside dedicated storage code.
# ---------------------------------------------------------------

NEW_RE = re.compile(r"\bnew\b\s+[A-Za-z_(]")
DELETE_RE = re.compile(r"\bdelete(\[\])?\b\s+[A-Za-z_]")

for sub in ("src", "bench", "examples"):
    for path in sorted((ROOT / sub).rglob("*")):
        if path.suffix not in (".cc", ".hh", ".cpp", ".hpp"):
            continue
        rel = path.relative_to(ROOT).as_posix()
        if rel in NAKED_NEW_ALLOWED:
            continue
        text = path.read_text()
        text = re.sub(r"/\*.*?\*/", "", text, flags=re.S)
        for lineno, line in enumerate(text.splitlines(), 1):
            code = line.split("//", 1)[0].replace("= delete", "")
            if NEW_RE.search(code) or DELETE_RE.search(code):
                err(f"{rel}:{lineno}: naked new/delete — use the "
                    "slab, a container, or a smart pointer")

# ---------------------------------------------------------------
# Rule 6: CpiBucket enum <-> cpiBucketName() labels <-> README
# bucket table, all three in sync, both directions.
# ---------------------------------------------------------------

def cpi_enum_entries() -> list:
    """CpiBucket enumerators (minus the NumBuckets sentinel)."""
    src = (ROOT / "src/mem/simresult.hh").read_text()
    m = re.search(r"enum class CpiBucket[^{]*\{(.*?)\}", src, re.S)
    if not m:
        err("enum class CpiBucket not found in src/mem/simresult.hh")
        return []
    body = re.sub(r"//[^\n]*", "", m.group(1))
    entries = re.findall(r"\b([A-Z]\w*)\b", body)
    return [e for e in entries if e != "NumBuckets"]


def cpi_name_labels() -> dict:
    """Enumerator -> label string, from cpiBucketName()'s switch."""
    src = (ROOT / "src/mem/simresult.cc").read_text()
    m = re.search(r"cpiBucketName\(.*?\n\}", src, re.S)
    if not m:
        err("cpiBucketName() not found in src/mem/simresult.cc")
        return {}
    return dict(re.findall(
        r'case CpiBucket::(\w+):\s*return "([a-z-]+)"', m.group(0)))


def readme_bucket_labels() -> list:
    """Bucket labels from the README's CPI-bucket table."""
    text = (ROOT / "README.md").read_text()
    m = re.search(r"### CPI buckets\n(.*?)(?:\n#|\Z)", text, re.S)
    if not m:
        err("README.md has no '### CPI buckets' section")
        return []
    return re.findall(r"^\| `([a-z-]+)` \|", m.group(1), re.M)


cpi_entries = cpi_enum_entries()
cpi_labels = cpi_name_labels()
readme_labels = readme_bucket_labels()

for entry in cpi_entries:
    if entry not in cpi_labels:
        err(f"CpiBucket::{entry} has no label in cpiBucketName() "
            "(src/mem/simresult.cc)")
for entry in cpi_labels:
    if entry not in cpi_entries:
        err(f"cpiBucketName() labels unknown bucket "
            f"CpiBucket::{entry}")
for entry, label in sorted(cpi_labels.items()):
    if label not in readme_labels:
        err(f"CPI bucket '{label}' (CpiBucket::{entry}) missing "
            "from the README's '### CPI buckets' table")
for label in readme_labels:
    if label not in cpi_labels.values():
        err(f"README CPI-bucket table row '{label}' matches no "
            "cpiBucketName() label")

# ---------------------------------------------------------------
# Rule 7: every machine-config data member is serialized in the
# config-key region of src/harness/sweep.cc (or allowlisted).
# ---------------------------------------------------------------

# Observe-only knobs that never change a simulation result:
# checkLevel (the invariant audit observes, it never steers) and
# pipeTracer (tracing jobs are made uncacheable instead of keyed).
CONFIG_KEY_EXEMPT = {"checkLevel", "pipeTracer"}

CONFIG_STRUCTS = [
    ("OooConfig", "src/core/config.hh"),
    ("RefConfig", "src/ref/refsim.hh"),
    ("MemConfig", "src/mem/memsystem.hh"),
    ("TlbConfig", "src/mem/tlb.hh"),
    ("LatencyTable", "src/isa/latency.hh"),
]


def config_members(struct: str, rel: str) -> list:
    """Data-member names of one config struct."""
    src = (ROOT / rel).read_text()
    m = re.search(r"struct " + struct + r"\s*\{(.*?)\n\};", src, re.S)
    if not m:
        err(f"cannot find struct {struct} in {rel}")
        return []
    body = m.group(1)
    body = re.sub(r"/\*.*?\*/", "", body, flags=re.S)
    body = re.sub(r"//[^\n]*", "", body)
    # Data members always come first in these structs; truncate at
    # the first inline member-function header (a line with "(" that
    # is neither a declaration ending in ";" nor a member
    # initializer containing "=") so function bodies — whose
    # "return t;" lines would fool the declarator regex — are never
    # scanned.
    lines = []
    for line in body.splitlines():
        if "(" in line and "=" not in line and ";" not in line:
            break
        lines.append(line)
    body = "\n".join(lines)
    # Member declarations left: "type name;", "type name = init;".
    return [dm.group(1) for dm in re.finditer(
        r"^\s+[A-Za-z_][\w:<>,*& ]*?[\s*&](\w+)\s*(?:=[^;]*|\{\})?;",
        body, re.M)]


sweep_src = (ROOT / "src/harness/sweep.cc").read_text()
key_regions = re.findall(
    r"// BEGIN config-key fields(.*?)// END config-key fields",
    sweep_src, re.S)
if not key_regions:
    err("no '// BEGIN config-key fields' region in "
        "src/harness/sweep.cc")
key_text = "\n".join(key_regions)

config_member_count = 0
for struct, rel in CONFIG_STRUCTS:
    members = config_members(struct, rel)
    if len(members) < 5:
        err(f"{struct} parse found only {len(members)} members in "
            f"{rel}; the parser is broken")
    config_member_count += len(members)
    for member in members:
        if member in CONFIG_KEY_EXEMPT:
            continue
        if f".{member}" not in key_text:
            err(f"{struct}::{member} ({rel}) is not serialized in "
                "the config-key region of src/harness/sweep.cc — "
                "runs differing only in it would alias one result-"
                "store entry; key it (or allowlist it as observe-"
                "only in scripts/lint_oova.py)")

# ---------------------------------------------------------------
# Rule 8: OccStruct enum <-> occStructName() labels <-> README
# occupancy table, all three in sync, both directions; and both
# telemetry renderers must emit through occStructName().
# ---------------------------------------------------------------

def occ_enum_entries() -> list:
    """OccStruct enumerators (minus the NumStructs sentinel)."""
    src = (ROOT / "src/common/stats.hh").read_text()
    m = re.search(r"enum class OccStruct[^{]*\{(.*?)\}", src, re.S)
    if not m:
        err("enum class OccStruct not found in src/common/stats.hh")
        return []
    body = re.sub(r"//[^\n]*", "", m.group(1))
    entries = re.findall(r"\b([A-Z]\w*)\b", body)
    return [e for e in entries if e != "NumStructs"]


def occ_name_labels() -> dict:
    """Enumerator -> label string, from occStructName()'s switch."""
    src = (ROOT / "src/common/stats.cc").read_text()
    m = re.search(r"occStructName\(.*?\n\}", src, re.S)
    if not m:
        err("occStructName() not found in src/common/stats.cc")
        return {}
    return dict(re.findall(
        r'case OccStruct::(\w+):\s*return "([a-z-]+)"', m.group(0)))


def readme_occ_labels() -> list:
    """Structure labels from the README's occupancy table."""
    text = (ROOT / "README.md").read_text()
    m = re.search(r"#### Occupancy structures\n(.*?)(?:\n#|\Z)",
                  text, re.S)
    if not m:
        err("README.md has no '#### Occupancy structures' section")
        return []
    return re.findall(r"^\| `([a-z-]+)` \|", m.group(1), re.M)


occ_entries = occ_enum_entries()
occ_labels = occ_name_labels()
occ_readme = readme_occ_labels()

for entry in occ_entries:
    if entry not in occ_labels:
        err(f"OccStruct::{entry} has no label in occStructName() "
            "(src/common/stats.cc)")
for entry in occ_labels:
    if entry not in occ_entries:
        err(f"occStructName() labels unknown structure "
            f"OccStruct::{entry}")
for entry, label in sorted(occ_labels.items()):
    if label not in occ_readme:
        err(f"occupancy structure '{label}' (OccStruct::{entry}) "
            "missing from the README's '#### Occupancy structures' "
            "table")
for label in occ_readme:
    if label not in occ_labels.values():
        err(f"README occupancy-table row '{label}' matches no "
            "occStructName() label")

# Both renderers must derive their per-structure keys from
# occStructName(): that is what guarantees all kNumOccStructs
# distributions reach the JSON and the --stats dump (and pick up new
# enum entries automatically).
for rel in ("src/mem/simresult.cc", "src/harness/statsdump.cc"):
    if "occStructName" not in (ROOT / rel).read_text():
        err(f"{rel} does not emit occupancy telemetry through "
            "occStructName() — a new OccStruct entry would silently "
            "miss this output surface")

# ---------------------------------------------------------------
# Rule 9: fault-injection Site enum <-> siteName() labels <-> README
# fault-site table, all three in sync, both directions.
# ---------------------------------------------------------------

def fault_enum_entries() -> list:
    """faultinj::Site enumerators (minus the NumSites sentinel)."""
    src = (ROOT / "src/harness/faultinj.hh").read_text()
    m = re.search(r"enum class Site[^{]*\{(.*?)\n\};", src, re.S)
    if not m:
        err("enum class Site not found in src/harness/faultinj.hh")
        return []
    body = re.sub(r"/\*.*?\*/", "", m.group(1), flags=re.S)
    body = re.sub(r"//[^\n]*", "", body)
    entries = re.findall(r"\b([A-Z]\w*)\b", body)
    return [e for e in entries if e != "NumSites"]


def fault_name_labels() -> dict:
    """Enumerator -> spec name, from siteName()'s switch."""
    src = (ROOT / "src/harness/faultinj.cc").read_text()
    # Anchor to the definition: the spec parser *calls* siteName()
    # earlier in the file.
    m = re.search(r"siteName\(Site site\).*?\n\}", src, re.S)
    if not m:
        err("siteName() definition not found in "
            "src/harness/faultinj.cc")
        return {}
    return dict(re.findall(
        r'case Site::(\w+):\s*return "([a-z-]+)"', m.group(0)))


def readme_fault_labels() -> list:
    """Site names from the README's fault-injection table."""
    text = (ROOT / "README.md").read_text()
    m = re.search(r"### Fault-injection sites\n(.*?)(?:\n#|\Z)",
                  text, re.S)
    if not m:
        err("README.md has no '### Fault-injection sites' section")
        return []
    return re.findall(r"^\| `([a-z-]+)` \|", m.group(1), re.M)


fault_entries = fault_enum_entries()
fault_labels = fault_name_labels()
fault_readme = readme_fault_labels()

for entry in fault_entries:
    if entry not in fault_labels:
        err(f"faultinj::Site::{entry} has no label in siteName() "
            "(src/harness/faultinj.cc) — no OOVA_FAULT spec can "
            "reach it")
for entry in fault_labels:
    if entry not in fault_entries:
        err(f"siteName() labels unknown fault site Site::{entry}")
for entry, label in sorted(fault_labels.items()):
    if label not in fault_readme:
        err(f"fault site '{label}' (Site::{entry}) missing from the "
            "README's '### Fault-injection sites' table")
for label in fault_readme:
    if label not in fault_labels.values():
        err(f"README fault-site table row '{label}' matches no "
            "siteName() label")

# The spec parser must resolve site names through siteName() — that
# is what keeps the enum, the spec grammar and the docs one list.
if "siteName(static_cast<Site>" not in (
        ROOT / "src/harness/faultinj.cc").read_text():
    err("src/harness/faultinj.cc's spec parser does not resolve "
        "site names through siteName() — the spec grammar would "
        "drift from the enum")

if errors:
    print(f"lint_oova: {len(errors)} violation(s)")
    sys.exit(1)
print("lint_oova: all checks passed "
      f"({len(figures)} figures, {len(fields)} SimResult fields, "
      f"{len(cpi_entries)} CPI buckets, "
      f"{config_member_count} config-key members, "
      f"{len(occ_entries)} occupancy structures, "
      f"{len(fault_entries)} fault sites)")
